//! The same protocol code, off the simulator: run the FD atomic
//! broadcast over OS threads with the real-time runtime and its
//! heartbeat failure detector, crash a process for real, and verify
//! the survivors still agree on one total order.
//!
//! This is the "prototyping" half of the Neko-style framework — useful
//! for checking that the state machines do not secretly depend on
//! simulator timing.
//!
//! ```text
//! cargo run --release --example real_runtime
//! ```

use std::time::Duration;

use abcast::{AbcastEvent, FdNode};
use fdet::SuspectSet;
use neko::{run_real, Pid, RealConfig, RealSchedule};

fn main() {
    let n = 3;
    let suspects = SuspectSet::new();

    let mut schedule = RealSchedule::new();
    for i in 0..20u64 {
        schedule = schedule.command(
            Duration::from_millis(20 + i * 8),
            Pid::new((i % 3) as usize),
            i,
        );
    }
    // p3 crashes for real mid-run; the heartbeat detector takes over.
    schedule = schedule.crash(Duration::from_millis(100), Pid::new(2));

    let report = run_real(
        n,
        RealConfig::new(Duration::from_secs(2))
            .heartbeat(Duration::from_millis(5), Duration::from_millis(60)),
        |p| FdNode::<u64>::new(p, n, &suspects),
        schedule,
    );

    let mut logs: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (_, p, ev) in &report.outputs {
        let AbcastEvent::Delivered { payload, .. } = ev;
        logs[p.index()].push(*payload);
    }

    println!("real-time runtime (threads + heartbeat failure detector)");
    for (i, log) in logs.iter().enumerate() {
        println!("  p{}: delivered {} messages", i + 1, log.len());
    }
    assert_eq!(logs[0], logs[1], "survivors must agree on the total order");
    assert!(
        logs[0].starts_with(&logs[2]),
        "crashed process's deliveries must be a prefix"
    );
    println!("survivors delivered identical sequences ✓");
}
