//! The adversarial schedule explorer, as a runnable budget: fuzzes
//! (schedule × fault script × algorithm × topology) tuples through
//! the shared atomic-broadcast oracle and exits non-zero with a
//! minimized, replayable repro if any invariant breaks.
//!
//! This is the CI smoke of `study::explore` (see EXPERIMENTS.md,
//! "Exploring schedules and shrinking failures"):
//!
//! ```sh
//! cargo run --release --example explore            # 1000 tuples/algorithm
//! ATOMBENCH_EXPLORE_BUDGET=10000 \
//! ATOMBENCH_EXPLORE_SEED=7 \
//!     cargo run --release --example explore        # deeper hunt
//! ATOMBENCH_EXPLORE_BUDGET=500000 \
//!     cargo run --release --example explore        # ~million-tuple soak
//! ```
//!
//! The soak budget (500 000 per algorithm, three study algorithms —
//! the paper's two plus the ring contender, 1.5 million tuples)
//! runs in about an hour at the measured explorer throughput (see
//! `explore_throughput`).

use study::explore::Explorer;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seed = env_u64("ATOMBENCH_EXPLORE_SEED", 0x5EED);
    let budget = env_u64("ATOMBENCH_EXPLORE_BUDGET", 1000) as usize;
    let explorer = Explorer::new(seed).with_budget(budget);
    println!("exploring {budget} tuples per algorithm (seed {seed:#x}) …");
    let start = std::time::Instant::now();
    let outcome = explorer.explore();
    println!(
        "examined {} tuples in {:.1?}",
        outcome.examined,
        start.elapsed()
    );
    if let Some(repro) = outcome.repro {
        eprintln!("INVARIANT VIOLATION (minimized):\n{repro}");
        eprintln!("replay verdict: {:?}", repro.replay());
        std::process::exit(1);
    }
    println!("clean: every tuple upheld the atomic-broadcast contract");
}
