//! Wrong suspicions hurt the two algorithms very differently (paper
//! Figs. 6–7): the GM algorithm excludes a wrongly suspected process
//! and readmits it after a state transfer — over and over while the
//! mistake lasts — while the FD algorithm only pays an extra consensus
//! round now and then.
//!
//! This example sweeps the failure detectors' mistake recurrence time
//! `T_MR` at `T_M = 0` and prints where each algorithm stops working.
//!
//! ```text
//! cargo run --release --example suspicion_storm
//! ```

use fdet::QosParams;
use neko::Dur;
use study::{run_replicated, Algorithm, FaultScript, RunParams};

fn main() {
    let n = 3;
    let throughput = 10.0;
    println!("suspicion-steady scenario: n = {n}, T = {throughput}/s, T_M = 0");
    println!("(mean latency in ms; 'saturated' = cannot sustain the load — paper Fig. 6)\n");
    println!(
        "{:>12} {:>16} {:>16}",
        "T_MR [ms]", "FD algorithm", "GM algorithm"
    );

    for tmr_ms in [10u64, 30, 100, 300, 1_000, 10_000, 100_000] {
        let qos = QosParams::new()
            .with_mistake_recurrence(Dur::from_millis(tmr_ms))
            .with_mistake_duration(Dur::ZERO);
        let script = FaultScript::suspicion_steady(qos);
        let params = RunParams::new(n, throughput)
            .with_measure(Dur::from_secs(4))
            .with_replications(3);
        let mut cells = Vec::new();
        for alg in Algorithm::PAPER {
            let out = run_replicated(alg, &script, &params, 99);
            cells.push(match out.latency {
                Some(s) => format!("{:10.2}", s.mean()),
                None => "saturated".to_string(),
            });
        }
        println!("{tmr_ms:>12} {:>16} {:>16}", cells[0], cells[1]);
    }

    println!("\nThe FD algorithm tolerates mistakes every few tens of ms; the GM");
    println!("algorithm needs them orders of magnitude rarer (each mistake costs");
    println!("an exclusion view change plus a rejoin with state transfer).");
}
