//! Explorer throughput program: measures how many adversarial tuples
//! per second `study::explore` examines at the default tuple mix, and
//! how many heap allocations each tuple costs — with and without the
//! thread-local run-context recycling (`STUDY_RUN_SCRATCH`).
//!
//! Doubles as the CI perf smoke: with `ATOMBENCH_MIN_TUPLES_PER_S`
//! set, exits non-zero when reuse-on throughput falls below the floor.
//!
//! ```sh
//! cargo run --release --example explore_throughput
//! ATOMBENCH_EXPLORE_BUDGET=500 ATOMBENCH_MIN_TUPLES_PER_S=300 \
//!     cargo run --release --example explore_throughput
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use figures::{Json, Report};
use study::explore::Explorer;

/// Counts every allocator hit so the program can report allocations
/// per tuple — the quantity the run-context recycling exists to cut.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers all real work to `System`; only a counter is added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One measured pass over the budget; returns (tuples/s, allocs/tuple).
/// `large` keeps or drops the n = 64 tuple class — dropping it gives
/// the small-group mix comparable with pre-multi-word baselines.
fn pass(seed: u64, budget: usize, reuse: bool, large: bool) -> (f64, f64) {
    study::set_run_scratch(reuse);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let outcome = Explorer::new(seed)
        .with_budget(budget)
        .with_large_group(if large { Some(64) } else { None })
        .explore();
    let secs = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        outcome.repro.is_none(),
        "throughput program hit an invariant violation: {:?}",
        outcome.repro
    );
    (
        outcome.examined as f64 / secs,
        allocs as f64 / outcome.examined as f64,
    )
}

fn main() {
    let seed = env_u64("ATOMBENCH_EXPLORE_SEED", 0x5EED);
    let budget = env_u64("ATOMBENCH_EXPLORE_BUDGET", 400) as usize;
    println!("explorer throughput, {budget} tuples per algorithm (seed {seed:#x}) …");

    // Warm-up pass (untimed): faults in the page cache, JIT-free but
    // branch predictors and allocator arenas settle.
    let _ = pass(seed, (budget / 4).max(10), true, false);

    let (cold_tps, cold_apt) = pass(seed, budget, false, false);
    println!("  small mix, reuse off: {cold_tps:>8.0} tuples/s  {cold_apt:>8.0} allocs/tuple");
    let (tps, apt) = pass(seed, budget, true, false);
    println!("  small mix, reuse on:  {tps:>8.0} tuples/s  {apt:>8.0} allocs/tuple");
    let (def_tps, def_apt) = pass(seed, budget, true, true);
    println!("  default mix (n ≤ 64): {def_tps:>8.0} tuples/s  {def_apt:>8.0} allocs/tuple");

    // Record the three passes in BENCH_results.json so the explorer's
    // throughput is tracked run-over-run like the figure benches.
    // Allocations per tuple ride in the second column — deterministic
    // where tuples/s is at the mercy of machine noise.
    let mut report = Report::new_custom("explorer_throughput", "budget_per_algorithm");
    for (series, reuse, t, a) in [
        ("small mix, reuse off", false, cold_tps, cold_apt),
        ("small mix, reuse on", true, tps, apt),
        ("default mix (n<=64), reuse on", true, def_tps, def_apt),
    ] {
        report.custom_row(
            series,
            budget,
            "tuples_per_s",
            "allocs_per_tuple",
            Some((t, a)),
            &[("reuse", Json::Bool(reuse))],
        );
    }
    report.finish();

    if let Ok(floor) = std::env::var("ATOMBENCH_MIN_TUPLES_PER_S") {
        let floor: f64 = floor
            .parse()
            .expect("ATOMBENCH_MIN_TUPLES_PER_S not a number");
        if tps < floor {
            eprintln!("FAIL: {tps:.0} tuples/s below the floor of {floor:.0}");
            std::process::exit(1);
        }
        println!("floor {floor:.0} tuples/s: ok");
    }
}
