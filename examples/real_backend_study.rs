//! The paper's measurement pipeline on the **real-time backend**: the
//! same `study::run_once` machinery that produces the simulated
//! figures, pointed at OS threads and the wall clock via
//! `Backend::Real`.
//!
//! Runs a short normal-steady and a crash-transient scenario for both
//! algorithms (the CI real-backend smoke job executes exactly this),
//! printing wall-clock latencies. Expect numbers in the tens of
//! microseconds to low milliseconds — these are channel hops, not the
//! simulator's 1 ms-unit contention model — plus the scripted `T_D`
//! for the transient probe.
//!
//! ```text
//! cargo run --release --example real_backend_study
//! ```

use neko::{Dur, Pid};
use study::{run_replicated, Algorithm, Backend, FaultScript, RunParams};

fn main() {
    let real = |n: usize, t: f64| {
        RunParams::new(n, t)
            .with_warmup(Dur::from_millis(150))
            .with_measure(Dur::from_millis(500))
            .with_drain(Dur::from_millis(350))
            .with_replications(1)
            .with_backend(Backend::Real)
            .with_real_heartbeat(Dur::from_millis(5), Dur::from_millis(60))
    };

    println!("scenario,algorithm,mean_latency_ms,measured,undelivered");
    for alg in Algorithm::PAPER {
        let out = run_replicated(alg, &FaultScript::normal_steady(), &real(3, 60.0), 0xBEA1);
        report("normal-steady", alg, &out);
    }
    for alg in Algorithm::PAPER {
        let script = FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::from_millis(40));
        let out = run_replicated(
            alg,
            &script,
            &real(3, 20.0).with_drain(Dur::from_millis(600)),
            0xBEA2,
        );
        report("crash-transient", alg, &out);
    }
}

fn report(scenario: &str, alg: Algorithm, out: &study::RunOutput) {
    let run = &out.runs[0];
    let mean = run
        .mean_latency_ms
        .map_or("saturated".into(), |l| format!("{l:.3}"));
    println!(
        "{scenario},{alg:?},{mean},{},{}",
        run.measured, run.undelivered
    );
    assert!(
        run.mean_latency_ms.is_some(),
        "{scenario}/{alg:?} must deliver on the real backend"
    );
}
