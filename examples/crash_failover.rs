//! Failover after a real crash (paper Fig. 8): the first coordinator /
//! sequencer crashes at `t` while a message is broadcast at the same
//! instant; how long until the group delivers it?
//!
//! The example prints the *latency overhead* (latency − detection
//! time) of both algorithms for several detection times `T_D`, and the
//! long-run effect of crashes (paper Fig. 5: the survivors are
//! *faster* afterwards, since crashed processes no longer load the
//! network, and the GM algorithm's sequencer waits for a smaller
//! quorum).
//!
//! ```text
//! cargo run --release --example crash_failover
//! ```

use neko::{Dur, Pid};
use study::{run_replicated, Algorithm, FaultScript, RunParams};

fn main() {
    let n = 3;
    let throughput = 10.0;

    println!("crash-transient scenario: n = {n}, T = {throughput}/s, crash of p1");
    println!("(overhead = latency − T_D, in ms — paper Fig. 8)\n");
    println!(
        "{:>10} {:>16} {:>16}",
        "T_D [ms]", "FD overhead", "GM overhead"
    );
    for td in [0u64, 10, 100] {
        let script = FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::from_millis(td));
        let params = RunParams::new(n, throughput)
            .with_warmup(Dur::from_millis(500))
            .with_drain(Dur::from_secs(2))
            .with_replications(15);
        let mut cells = Vec::new();
        for alg in Algorithm::PAPER {
            let out = run_replicated(alg, &script, &params, 5);
            let s = out.latency.expect("probe delivered");
            cells.push(format!("{:10.2}", s.mean() - td as f64));
        }
        println!("{td:>10} {:>16} {:>16}", cells[0], cells[1]);
    }
    println!("\nAt low load the FD algorithm recovers faster: one extra consensus");
    println!("round beats a full view change. The overhead of both is only a");
    println!("small multiple of the steady-state latency, whatever T_D is.");

    let n = 7;
    let throughput = 100.0;
    println!("\ncrash-steady scenario: n = {n}, T = {throughput}/s, long after crashes");
    println!("(paper Fig. 5)\n{:>26} {:>12}", "configuration", "latency");
    let steady = |alg, crashed: Vec<Pid>| {
        let script = FaultScript::crash_steady(&crashed);
        let params = RunParams::new(n, throughput)
            .with_measure(Dur::from_secs(3))
            .with_replications(3);
        run_replicated(alg, &script, &params, 6)
            .mean_latency_ms()
            .expect("sustainable")
    };
    let three = vec![Pid::new(4), Pid::new(5), Pid::new(6)];
    println!(
        "{:>26} {:>9.2} ms",
        "no crash",
        steady(Algorithm::Fd, vec![])
    );
    println!(
        "{:>26} {:>9.2} ms",
        "FD, 3 crashed",
        steady(Algorithm::Fd, three.clone())
    );
    println!(
        "{:>26} {:>9.2} ms",
        "GM, 3 crashed",
        steady(Algorithm::Gm, three)
    );
    println!("\nLong after the crashes the survivors are faster than before (less");
    println!("load), and the GM algorithm beats FD: its sequencer waits for a");
    println!("majority of the 4-member view while the FD coordinator still needs");
    println!("a majority of the original 7.");
}
