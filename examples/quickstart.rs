//! Quickstart: run both atomic broadcast algorithms on the simulator,
//! in the paper's normal-steady scenario, and print their latency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use study::{run_replicated, Algorithm, FaultScript, RunParams};

fn main() {
    println!("Atomic broadcast latency, normal-steady scenario");
    println!("(network time unit 1 ms, λ = 1, Poisson arrivals — paper Fig. 4)\n");
    println!(
        "{:>5} {:>12} {:>22} {:>22}",
        "n", "load [1/s]", "FD algorithm [ms]", "GM algorithm [ms]"
    );

    for n in [3, 7] {
        for throughput in [10.0, 100.0, 300.0, 500.0, 700.0] {
            let params = RunParams::new(n, throughput)
                .with_measure(neko::Dur::from_secs(3))
                .with_replications(3);
            let mut cells = Vec::new();
            for alg in Algorithm::PAPER {
                let out = run_replicated(alg, &FaultScript::normal_steady(), &params, 1);
                cells.push(match out.latency {
                    Some(s) => format!("{:8.2} ± {:5.2}", s.mean(), s.ci95()),
                    None => "saturated".to_string(),
                });
            }
            println!("{n:>5} {throughput:>12} {:>22} {:>22}", cells[0], cells[1]);
        }
    }

    println!("\nThe two columns are identical: in suspicion-free runs the two");
    println!("algorithms generate the same pattern of messages (paper, Section 4.4).");
}
