//! # atombench
//!
//! A reproduction of *“Comparison of Failure Detectors and Group
//! Membership: Performance Study of Two Atomic Broadcast Algorithms”*
//! (Urbán, Shnayderman, Schiper — DSN 2003).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`neko`] — deterministic discrete-event simulation engine with the
//!   paper's contention-aware network model, plus a thread-based
//!   real-time runtime.
//! * [`fdet`] — failure-detector models driven by the QoS metrics of
//!   Chen et al. (`T_D`, `T_MR`, `T_M`), and a heartbeat detector.
//! * [`rbcast`] — lazy reliable broadcast.
//! * [`consensus`] — Chandra–Toueg ♦S consensus.
//! * [`membership`] — group membership with view synchrony.
//! * [`abcast`] — the two atomic broadcast algorithms under study.
//! * [`study`] — the benchmark methodology: composable fault scripts,
//!   workloads, latency statistics and the parallel experiment
//!   runner.
//!
//! ## Quickstart
//!
//! Run a normal-steady experiment for both algorithms and print the
//! mean latency:
//!
//! ```
//! use study::{Algorithm, FaultScript, run_replicated, RunParams};
//! use neko::Dur;
//!
//! let params = RunParams::new(3, 100.0)
//!     .with_measure(Dur::from_secs(1))
//!     .with_replications(2);
//! for alg in Algorithm::PAPER {
//!     let out = run_replicated(alg, &FaultScript::normal_steady(), &params, 0xC0FFEE);
//!     let lat = out.latency.expect("not saturated");
//!     println!("{alg:?}: {:.2} ms mean latency", lat.mean());
//! }
//! ```
//!
//! Scenarios beyond the paper are the same grammar — e.g. a crash
//! that heals:
//!
//! ```
//! use neko::{Dur, Pid};
//! use study::FaultScript;
//!
//! let script = FaultScript::crash_recover(
//!     Pid::new(2),                // who
//!     Dur::from_millis(200),      // crash, this long after warm-up
//!     Dur::from_millis(500),      // downtime
//!     Dur::from_millis(30),       // detection time T_D
//! );
//! # let _ = script;
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the
//! figure-regeneration harnesses.

pub use abcast;
pub use consensus;
pub use fdet;
pub use membership;
pub use neko;
pub use rbcast;
pub use study;
