//! Cross-backend conformance: the same seeded workload driven through
//! `Backend::Sim` and `Backend::Real` must leave the atomic-broadcast
//! contract intact on the real backend — **agreement** (every message
//! delivered somewhere is delivered everywhere among correct
//! processes), **total order** (delivery logs are prefix-compatible),
//! **no duplication**, and **validity** (every broadcast by a correct
//! process is delivered).
//!
//! The point of the [`neko::Runtime`] driver layer is that nothing in
//! these tests names a backend until the last moment: one generic
//! function schedules the workload, and the same fault scripts run
//! through `study::run_once` on either selector.

use abcast::{AbcastEvent, FdNode, GmNode};
use fdet::{QosParams, SuspectSet};
use neko::{Dur, Pid, Process, RealConfig, RealRuntime, Runtime, SimBuilder, Time};
use ringpaxos::RingNode;
use study::oracle::{self, DeliveryLog};
use study::{poisson_arrivals, run_once, Algorithm, Backend, FaultScript, RunParams};

/// Drives the same Poisson workload through any backend and returns
/// the per-process delivery logs.
fn drive<P, R>(rt: &mut R, n: usize, throughput: f64, horizon: Time, seed: u64) -> Vec<DeliveryLog>
where
    P: Process<Cmd = u64, Out = AbcastEvent<u64>>,
    R: Runtime<P>,
{
    let senders: Vec<Pid> = Pid::all(n).collect();
    for (t, p, v) in poisson_arrivals(n, throughput, horizon, &senders, seed) {
        rt.schedule_command(t, p, v);
    }
    // Generous wall-clock tail: batched stacks hold the last payloads
    // for up to a flush window before shipping, and CI machines are
    // slow — an undersized drain here reads as lost messages.
    rt.run_until(horizon + Dur::from_millis(900));
    oracle::delivery_logs(n, rt.take_outputs())
}

/// Agreement + total order (prefix-compatible logs) + no duplication —
/// the shared [`study::oracle`] checker, the same one the schedule
/// explorer judges fuzzed runs with.
fn assert_abcast_invariants(logs: &[DeliveryLog], label: &str) {
    oracle::check_uniform_total_order(logs).unwrap_or_else(|v| panic!("{label}: {v}"));
}

fn conformance_for<P>(make: impl Fn(Pid) -> P + Copy, label: &str)
where
    P: Process<Cmd = u64, Out = AbcastEvent<u64>> + Send,
    P::Msg: Send,
{
    let (n, throughput, seed) = (3, 60.0, 0xC0F0);
    let horizon = Time::from_millis(700);

    let mut sim = SimBuilder::new(n).seed(seed).build_with(make);
    let sim_logs = drive(&mut sim, n, throughput, horizon, seed);

    let config = RealConfig::new()
        .heartbeat(
            std::time::Duration::from_millis(5),
            std::time::Duration::from_millis(60),
        )
        .seed(seed);
    let mut real = RealRuntime::new(n, config, make);
    let real_logs = drive(&mut real, n, throughput, horizon, seed);

    // The real backend upholds the atomic-broadcast contract …
    assert_abcast_invariants(&real_logs, label);
    // … including validity: in a fault-free run below saturation,
    // every process delivers every broadcast —
    let total = sim_logs[0].len();
    for (i, log) in real_logs.iter().enumerate() {
        assert_eq!(log.len(), total, "{label}: p{} missed messages", i + 1);
    }
    // — and delivers exactly the payload set the simulator delivered
    // for the same seeded workload (the order may legitimately differ
    // between wall-clock and simulated time).
    let payload_set = |logs: &[DeliveryLog]| {
        logs[0]
            .iter()
            .map(|(_, v)| *v)
            .collect::<std::collections::BTreeSet<u64>>()
    };
    assert_eq!(payload_set(&sim_logs), payload_set(&real_logs), "{label}");
}

#[test]
fn same_seeded_workload_conforms_across_backends_fd() {
    let n = 3;
    let s = SuspectSet::new();
    conformance_for(|p| FdNode::<u64>::new(p, n, &s), "FD sim↔real");
}

#[test]
fn same_seeded_workload_conforms_across_backends_gm() {
    let n = 3;
    let s = SuspectSet::new();
    conformance_for(|p| GmNode::<u64>::new(p, n, &s), "GM sim↔real");
}

#[test]
fn same_seeded_workload_conforms_across_backends_ring() {
    let n = 3;
    let s = SuspectSet::new();
    conformance_for(|p| RingNode::<u64>::new(p, n, &s), "Ring sim↔real");
}

/// Short wall-clock run dimensions for the scenario smoke below. The
/// drain is deliberately wide for a 500 ms measurement window: real
/// runs absorb OS scheduling noise, and batched runs additionally
/// hold the tail payloads for up to one flush window.
fn real_params(n: usize, throughput: f64) -> RunParams {
    RunParams::new(n, throughput)
        .with_warmup(Dur::from_millis(150))
        .with_measure(Dur::from_millis(500))
        .with_drain(Dur::from_millis(700))
        .with_replications(1)
        .with_backend(Backend::Real)
        .with_real_heartbeat(Dur::from_millis(5), Dur::from_millis(60))
}

/// The four paper scenarios plus crash-recover and healing-partition,
/// through the *unchanged* `study::run_once` pipeline on
/// `Backend::Real`. Fault windows tolerate transient undeliverables,
/// hence the lax saturation bar on the recovery scenarios.
fn real_scenarios() -> Vec<(&'static str, FaultScript, RunParams)> {
    let qos = QosParams::new()
        .with_mistake_recurrence(Dur::from_millis(800))
        .with_mistake_duration(Dur::from_millis(5));
    vec![
        (
            "normal-steady",
            FaultScript::normal_steady(),
            real_params(3, 50.0),
        ),
        (
            "crash-steady",
            FaultScript::crash_steady(&[Pid::new(2)]),
            real_params(3, 50.0),
        ),
        (
            "suspicion-steady",
            FaultScript::suspicion_steady(qos),
            real_params(3, 50.0).with_saturation_frac(0.5),
        ),
        (
            "crash-transient",
            FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::from_millis(40)),
            real_params(3, 20.0).with_drain(Dur::from_millis(600)),
        ),
        (
            "crash-recover",
            FaultScript::crash_recover(
                Pid::new(2),
                Dur::from_millis(100),
                Dur::from_millis(250),
                Dur::from_millis(30),
            ),
            real_params(3, 50.0).with_saturation_frac(0.5),
        ),
        (
            "healing-partition",
            FaultScript::healing_partition(
                vec![vec![Pid::new(0), Pid::new(1)], vec![Pid::new(2)]],
                Dur::from_millis(100),
                Dur::from_millis(250),
                Dur::from_millis(30),
            ),
            real_params(3, 50.0)
                .with_drain(Dur::from_millis(600))
                .with_saturation_frac(0.5),
        ),
    ]
}

fn scenarios_run_for_real(alg: Algorithm) {
    for (name, script, params) in real_scenarios() {
        let run = run_once(alg, &script, &params, 0x5EA1);
        assert!(
            run.mean_latency_ms.is_some(),
            "{alg:?}/{name} saturated on the real backend: measured {} undelivered {}",
            run.measured,
            run.undelivered,
        );
        assert!(run.measured > 0, "{alg:?}/{name}: nothing measured");
    }
}

#[test]
fn paper_scenarios_run_for_real_fd() {
    scenarios_run_for_real(Algorithm::Fd);
}

#[test]
fn batched_scenario_runs_for_real() {
    // The batching layer on the real backend: flush timers ride the
    // OS clock, packs cross real channels, and the unchanged
    // measurement pipeline still sees per-payload deliveries. The lax
    // saturation bar tolerates tail payloads still buffered when the
    // horizon closes on a noisy CI machine.
    use abcast::BatchConfig;
    let params = real_params(3, 80.0)
        .with_batching(BatchConfig::new(4, Dur::from_millis(5)))
        .with_saturation_frac(0.2);
    let run = run_once(
        Algorithm::Fd,
        &FaultScript::normal_steady(),
        &params,
        0xBA7C,
    );
    assert!(
        run.mean_latency_ms.is_some(),
        "batched normal-steady saturated on the real backend: measured {} undelivered {}",
        run.measured,
        run.undelivered,
    );
    assert!(run.measured > 0);
}

#[test]
fn paper_scenarios_run_for_real_gm() {
    scenarios_run_for_real(Algorithm::Gm);
}

#[test]
fn paper_scenarios_run_for_real_ring() {
    scenarios_run_for_real(Algorithm::Ring);
}

#[test]
fn sim_and_real_agree_on_what_was_measured() {
    // `measured` counts script-time arrivals by live senders — a pure
    // function of the compiled script and the seed, so both backends
    // must report the same number for the same run dimensions, for
    // every study algorithm (the paper's two plus the ring contender).
    let script = FaultScript::normal_steady();
    for alg in Algorithm::STUDY {
        let sim = run_once(
            alg,
            &script,
            &real_params(3, 50.0).with_backend(Backend::Sim),
            7,
        );
        let real = run_once(alg, &script, &real_params(3, 50.0), 7);
        assert_eq!(sim.measured, real.measured, "{alg:?}");
        assert_eq!(real.undelivered, 0, "{alg:?}");
    }
}
