//! End-to-end tests of the adaptive batching layer: packs must be
//! invisible to the atomic-broadcast contract — agreement, total
//! order, no duplication, validity all hold on the *payloads* — while
//! visibly cutting wire traffic and moving the saturation knee.

use abcast::{AbcastEvent, BatchConfig, Batched, FdNode, GmNode, MsgId, Pack};
use fdet::SuspectSet;
use neko::{Dur, Pid, Process, SimBuilder, Time};
use study::{
    find_saturation, poisson_arrivals, run_replicated, Algorithm, FaultScript, RunParams,
    SaturationSearch,
};

/// Drives a seeded Poisson workload through a sim of batched nodes
/// and returns the per-process delivery logs.
fn drive<P>(make: impl FnMut(Pid) -> P, n: usize, seed: u64) -> Vec<Vec<(MsgId, u64)>>
where
    P: Process<Cmd = u64, Out = AbcastEvent<u64>>,
{
    let horizon = Time::from_millis(800);
    let mut sim = SimBuilder::new(n).seed(seed).build_with(make);
    let senders: Vec<Pid> = Pid::all(n).collect();
    for (t, p, v) in poisson_arrivals(n, 400.0, horizon, &senders, seed) {
        sim.schedule_command(t, p, v);
    }
    sim.run_until(horizon + Dur::from_millis(500));
    let mut logs = vec![Vec::new(); n];
    for (_, p, ev) in sim.take_outputs() {
        let AbcastEvent::Delivered { id, payload } = ev;
        logs[p.index()].push((id, payload));
    }
    logs
}

/// Agreement + total order (identical logs in a fault-free run) + no
/// duplication + validity (everything broadcast is delivered).
fn assert_invariants(logs: &[Vec<(MsgId, u64)>], expected: usize, label: &str) {
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(
            log,
            &logs[0],
            "{label}: p{}'s delivery order differs from p1's",
            i + 1
        );
        let ids: std::collections::BTreeSet<MsgId> = log.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), log.len(), "{label}: duplicate ids at p{}", i + 1);
        let payloads: std::collections::BTreeSet<u64> = log.iter().map(|(_, v)| *v).collect();
        assert_eq!(
            payloads.len(),
            expected,
            "{label}: p{} missed payloads",
            i + 1
        );
    }
}

#[test]
fn batched_fd_upholds_the_abcast_contract() {
    let n = 3;
    let suspects = SuspectSet::new();
    let cfg = BatchConfig::new(8, Dur::from_millis(3));
    let logs = drive(
        |p| Batched::new(p, FdNode::<Pack<u64>>::new(p, n, &suspects), cfg),
        n,
        0xBA7C01,
    );
    let total = logs[0].len();
    assert!(total > 100, "workload must be non-trivial: {total}");
    assert_invariants(&logs, total, "batched FD");
}

#[test]
fn batched_gm_upholds_the_abcast_contract() {
    let n = 3;
    let suspects = SuspectSet::new();
    let cfg = BatchConfig::new(8, Dur::from_millis(3));
    let logs = drive(
        |p| Batched::new(p, GmNode::<Pack<u64>>::new(p, n, &suspects), cfg),
        n,
        0xBA7C02,
    );
    let total = logs[0].len();
    assert!(total > 100, "workload must be non-trivial: {total}");
    assert_invariants(&logs, total, "batched GM");
}

#[test]
fn batched_ring_upholds_the_abcast_contract() {
    use ringpaxos::RingNode;
    let n = 3;
    let suspects = SuspectSet::new();
    let cfg = BatchConfig::new(8, Dur::from_millis(3));
    let logs = drive(
        |p| Batched::new(p, RingNode::<Pack<u64>>::new(p, n, &suspects), cfg),
        n,
        0xBA7C06,
    );
    let total = logs[0].len();
    assert!(total > 100, "workload must be non-trivial: {total}");
    assert_invariants(&logs, total, "batched Ring");
}

#[test]
fn batched_and_unbatched_deliver_the_same_payload_set() {
    let n = 3;
    let suspects = SuspectSet::new();
    let unbatched = drive(|p| FdNode::<u64>::new(p, n, &suspects), n, 0xBA7C03);
    let cfg = BatchConfig::new(8, Dur::from_millis(3));
    let batched = drive(
        |p| Batched::new(p, FdNode::<Pack<u64>>::new(p, n, &suspects), cfg),
        n,
        0xBA7C03,
    );
    let payloads = |logs: &[Vec<(MsgId, u64)>]| {
        logs[0]
            .iter()
            .map(|(_, v)| *v)
            .collect::<std::collections::BTreeSet<u64>>()
    };
    assert_eq!(
        payloads(&unbatched),
        payloads(&batched),
        "same seeded workload, same delivered set — batching only repacks the wire"
    );
}

#[test]
fn batching_survives_crash_recovery() {
    // A batched stack under the crash-recover script: the recovered
    // process rejoins (its pre-crash buffered payloads reflushed via
    // `on_recover`) and the run must not saturate.
    let script = FaultScript::crash_recover(
        Pid::new(2),
        Dur::from_millis(200),
        Dur::from_millis(600),
        Dur::from_millis(30),
    );
    let params = RunParams::new(3, 50.0)
        .with_warmup(Dur::from_millis(200))
        .with_measure(Dur::from_secs(2))
        .with_drain(Dur::from_secs(1))
        .with_replications(2)
        .with_batching(BatchConfig::new(4, Dur::from_millis(5)));
    for alg in Algorithm::STUDY {
        let out = run_replicated(alg, &script, &params, 0xBA7C04);
        let lat = out
            .latency
            .unwrap_or_else(|| panic!("{alg:?} saturated under batching + churn"));
        assert!(lat.mean() > 0.0, "{alg:?}");
        assert_eq!(out.saturated, 0, "{alg:?}");
    }
}

#[test]
fn batching_raises_the_saturation_knee_on_the_shared_medium() {
    // The acceptance bar of the batching study, pinned as a test:
    // T*(batched) must beat T*(unbatched) on the paper's topology.
    let params = RunParams::new(3, 0.0)
        .with_warmup(Dur::from_millis(200))
        .with_measure(Dur::from_millis(800))
        .with_drain(Dur::from_millis(800))
        .with_replications(1);
    let search = SaturationSearch::default()
        .with_start(200.0)
        .with_ceiling(12_800.0)
        .with_rel_tol(0.5);
    let unbatched = find_saturation(
        Algorithm::Fd,
        &FaultScript::normal_steady(),
        &params,
        0xBA7C05,
        &search,
    );
    let batched = find_saturation(
        Algorithm::Fd,
        &FaultScript::normal_steady(),
        &params
            .clone()
            .with_batching(BatchConfig::new(32, Dur::from_millis(10))),
        0xBA7C05,
        &search,
    );
    assert!(
        batched.t_star >= unbatched.t_star * 2.0,
        "batching must at least double the knee: {} vs {}",
        batched.t_star,
        unbatched.t_star
    );
}
