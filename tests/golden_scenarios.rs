//! Golden-equivalence tests for the fault-script refactor.
//!
//! The latency samples below were pinned from the pre-refactor
//! `ScenarioSpec` enum path (the closed four-scenario runner), seed
//! `0x601D`, before `FaultScript` existed. The script path must
//! reproduce them **bit-identically**: the four paper scenarios are
//! the contract the composable injection layer compiles down to.

use neko::{Dur, Pid};
use study::{run_replicated, Algorithm, FaultScript, RunParams};

const SEED: u64 = 0x601D;

fn quick(n: usize, t: f64) -> RunParams {
    RunParams::new(n, t)
        .with_warmup(Dur::from_millis(200))
        .with_measure(Dur::from_secs(2))
        .with_drain(Dur::from_secs(1))
        .with_replications(3)
}

/// Golden per-replication samples: `(mean latency bits, measured,
/// undelivered)`.
fn check(script: &FaultScript, params: &RunParams, alg: Algorithm, golden: &[(u64, u64, u64)]) {
    let out = run_replicated(alg, script, params, SEED);
    assert_eq!(out.runs.len(), golden.len(), "{alg:?}: replication count");
    for (i, (run, (bits, measured, undelivered))) in out.runs.iter().zip(golden).enumerate() {
        assert_eq!(
            run.mean_latency_ms.map(f64::to_bits).unwrap_or(0),
            *bits,
            "{alg:?} rep {i}: mean latency drifted (got {:?})",
            run.mean_latency_ms,
        );
        assert_eq!(run.measured, *measured, "{alg:?} rep {i}: measured");
        assert_eq!(
            run.undelivered, *undelivered,
            "{alg:?} rep {i}: undelivered"
        );
    }
}

/// The ring contender's pins for the suspicion-free and
/// crash-transient timelines. Both are bit-identical to FD's pins:
/// in a suspicion-free run the ring stack sends the same messages at
/// the same instants (rbcast dissemination + one consensus stream),
/// and the simulator's cost model charges per message, not per byte,
/// so ordering compact ids instead of payloads cannot move a
/// timestamp. The crash-transient timeline decides before any fetch
/// is needed (payloads disseminated with their ids), so the repair
/// ring stays idle there too. A run where these pins drift apart from
/// FD's is the signal that the ring's extra machinery leaked into the
/// common case.
#[test]
fn ring_golden_scenarios_are_pinned() {
    let golden_normal = [
        (0x4029a224e769fc8b, 205, 0),
        (0x4029cfda244ea8be, 206, 0),
        (0x402a3fbe76c8b436, 212, 0),
    ];
    check(
        &FaultScript::normal_steady(),
        &quick(3, 100.0),
        Algorithm::Ring,
        &golden_normal,
    );
    let golden_transient = [
        (0x4052400000000000, 1, 0),
        (0x404e800000000000, 1, 0),
        (0x404e800000000000, 1, 0),
        (0x404e800000000000, 1, 0),
        (0x404e800000000000, 1, 0),
    ];
    check(
        &FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::from_millis(50)),
        &quick(3, 20.0)
            .with_drain(Dur::from_secs(2))
            .with_replications(5),
        Algorithm::Ring,
        &golden_transient,
    );
}

/// The ring pins hold at every sweep worker count: the thread-pool
/// executor must not leak scheduling into results for the new
/// algorithm any more than for the paper's two.
#[test]
fn ring_goldens_are_byte_identical_across_sweep_workers() {
    use study::{run_sweep_with_workers, SweepPoint};
    let points = vec![
        SweepPoint::new(
            Algorithm::Ring,
            FaultScript::normal_steady(),
            quick(3, 100.0),
            SEED,
        ),
        SweepPoint::new(
            Algorithm::Ring,
            FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::from_millis(50)),
            quick(3, 20.0)
                .with_drain(Dur::from_secs(2))
                .with_replications(5),
            SEED,
        ),
    ];
    let fingerprint = |outs: &[study::RunOutput]| {
        outs.iter()
            .flat_map(|o| {
                o.runs.iter().map(|r| {
                    (
                        r.mean_latency_ms.map(f64::to_bits).unwrap_or(0),
                        r.measured,
                        r.undelivered,
                    )
                })
            })
            .collect::<Vec<_>>()
    };
    let serial = run_sweep_with_workers(&points, 1);
    // The serial sweep reproduces the pinned goldens …
    assert_eq!(
        fingerprint(&serial),
        vec![
            (0x4029a224e769fc8b, 205, 0),
            (0x4029cfda244ea8be, 206, 0),
            (0x402a3fbe76c8b436, 212, 0),
            (0x4052400000000000, 1, 0),
            (0x404e800000000000, 1, 0),
            (0x404e800000000000, 1, 0),
            (0x404e800000000000, 1, 0),
            (0x404e800000000000, 1, 0),
        ],
    );
    // … and the pool never perturbs them.
    for workers in [2usize, 8] {
        let pooled = run_sweep_with_workers(&points, workers);
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&pooled),
            "{workers} workers"
        );
    }
}

#[test]
fn normal_steady_matches_enum_path() {
    let script = FaultScript::normal_steady();
    let params = quick(3, 100.0);
    let golden = [
        (0x4029a224e769fc8b, 205, 0),
        (0x4029cfda244ea8be, 206, 0),
        (0x402a3fbe76c8b436, 212, 0),
    ];
    check(&script, &params, Algorithm::Fd, &golden);
    check(&script, &params, Algorithm::Gm, &golden);
}

#[test]
fn crash_steady_matches_enum_path() {
    let script = FaultScript::crash_steady(&[Pid::new(2)]);
    let params = quick(3, 100.0);
    let golden = [
        (0x40249a909ecc7c21, 130, 0),
        (0x40252b4bd630c1ed, 135, 0),
        (0x4024d7d37695037d, 142, 0),
    ];
    check(&script, &params, Algorithm::Fd, &golden);
    check(&script, &params, Algorithm::Gm, &golden);
}

#[test]
fn crash_steady_n7_matches_enum_path() {
    let script = FaultScript::crash_steady(&[Pid::new(6), Pid::new(5)]);
    let params = quick(7, 300.0);
    check(
        &script,
        &params,
        Algorithm::Fd,
        &[
            (0x4034c51c5e444ca3, 418, 0),
            (0x403542f001f1c915, 455, 0),
            (0x40351d05071bdf66, 433, 0),
        ],
    );
    check(
        &script,
        &params,
        Algorithm::Gm,
        &[
            (0x403370d88508249c, 418, 0),
            (0x40336687d0efbf19, 455, 0),
            (0x4033632143beac0e, 433, 0),
        ],
    );
}

#[test]
fn suspicion_steady_matches_enum_path() {
    let qos = fdet::QosParams::new()
        .with_mistake_recurrence(Dur::from_millis(500))
        .with_mistake_duration(Dur::from_millis(10));
    let script = FaultScript::suspicion_steady(qos);
    let params = quick(3, 100.0);
    check(
        &script,
        &params,
        Algorithm::Fd,
        &[
            (0x402c52b6d768de19, 205, 0),
            (0x402b324d81804ee9, 206, 0),
            (0x402c2c24038e15ba, 212, 0),
        ],
    );
    // GM values re-pinned after the view-synchrony fixes that the
    // schedule explorer forced (see tests/explore.rs): the flush
    // barrier (no in-view delivery once a view change snapshotted its
    // bundles), the install-time merge of locally held sequenced
    // messages below the flush delivery horizon,
    // majority-of-exchanges view proposals, the re-issue of an
    // excluded process's undelivered broadcasts, and buffering (not
    // dropping) traffic addressed to a member-to-be whose Welcome is
    // still in flight. Every other scenario is bit-identical to the
    // pre-fix pins; this one both dropped messages (5/10/1 per
    // replication above — now zero) and could wedge a view change
    // outright, inflating the old means.
    check(
        &script,
        &params,
        Algorithm::Gm,
        &[
            (0x4039ed554e836962, 205, 0),
            (0x403795b110019735, 206, 0),
            (0x403722e147ae1479, 212, 0),
        ],
    );
}

#[test]
fn crash_transient_matches_enum_path() {
    let script = FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::from_millis(50));
    let params = quick(3, 20.0)
        .with_drain(Dur::from_secs(2))
        .with_replications(5);
    check(
        &script,
        &params,
        Algorithm::Fd,
        &[
            (0x4052400000000000, 1, 0),
            (0x404e800000000000, 1, 0),
            (0x404e800000000000, 1, 0),
            (0x404e800000000000, 1, 0),
            (0x404e800000000000, 1, 0),
        ],
    );
    check(
        &script,
        &params,
        Algorithm::Gm,
        &[
            (0x404f800000000000, 1, 0),
            (0x404f800000000000, 1, 0),
            (0x404f800000000000, 1, 0),
            (0x404f800000000000, 1, 0),
            (0x404f800000000000, 1, 0),
        ],
    );
}

#[test]
fn crash_transient_zero_detection_matches_enum_path() {
    // T_D = 0 exercises the trickiest schedule-order tie: crash,
    // probe and every suspicion edge land on the same instant.
    let script = FaultScript::crash_transient(Pid::new(0), Pid::new(1), Dur::ZERO);
    let params = quick(3, 20.0)
        .with_drain(Dur::from_secs(2))
        .with_replications(5);
    check(
        &script,
        &params,
        Algorithm::Fd,
        &[
            (0x403768b439581062, 1, 0),
            (0x402a000000000000, 1, 0),
            (0x402e95810624dd2f, 1, 0),
            (0x4032000000000000, 1, 0),
            (0x402c000000000000, 1, 0),
        ],
    );
    check(
        &script,
        &params,
        Algorithm::Gm,
        &[
            (0x402ed16872b020c5, 1, 0),
            (0x402e000000000000, 1, 0),
            (0x402e95810624dd2f, 1, 0),
            (0x4030000000000000, 1, 0),
            (0x402e000000000000, 1, 0),
        ],
    );
}
