//! Workspace tests for the adversarial schedule explorer
//! (`study::explore`) and the determinism contract it leans on.
//!
//! The explorer's value rests on two pillars, both pinned here:
//!
//! 1. **Reproducibility** — a [`study::explore::Tuple`] fully
//!    determines its verdict (same tuple → same verdict, bit for
//!    bit), and the sweep worker pool never leaks scheduling into
//!    results (1, 2 and 8 workers produce byte-identical
//!    `RunOutput`s).
//! 2. **Teeth** — with the `mutation-skip-tiebreak` feature the FD
//!    algorithm deliberately skips the paper's id-order tie-break
//!    inside decided batches; the explorer must *catch* the resulting
//!    total-order violation and *shrink* it to a minimal, replayable
//!    [`study::explore::Repro`]. (That test only compiles with the
//!    feature, which CI enables for exactly this file; the clean-run
//!    tests below compile always and must stay clean.)

use neko::Dur;
use study::explore::{run_tuple, Explorer};
use study::{run_sweep_with_workers, Algorithm, FaultScript, RunOutput, RunParams, SweepPoint};

fn quick_explorer(seed: u64) -> Explorer {
    Explorer::new(seed)
        .with_budget(25)
        .with_group_sizes(3, 4)
        .with_throughput(70.0)
}

/// Every latency bit, counter and net stat of a sweep, for exact
/// comparison.
fn fingerprint(outs: &[RunOutput]) -> Vec<(Vec<u64>, u64, u64, u64)> {
    outs.iter()
        .flat_map(|o| {
            o.runs.iter().map(|r| {
                (
                    r.latencies.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
                    r.measured,
                    r.undelivered,
                    r.net.wire_messages,
                )
            })
        })
        .collect()
}

#[test]
fn sweeps_are_byte_identical_for_1_2_and_8_workers() {
    let params = RunParams::new(3, 90.0)
        .with_warmup(Dur::from_millis(200))
        .with_measure(Dur::from_secs(1))
        .with_drain(Dur::from_millis(800))
        .with_replications(3);
    let points = vec![
        SweepPoint::new(
            Algorithm::Fd,
            FaultScript::normal_steady(),
            params.clone(),
            41,
        ),
        SweepPoint::new(
            Algorithm::Gm,
            FaultScript::crash_steady(&[neko::Pid::new(2)]),
            params.clone(),
            42,
        ),
        SweepPoint::new(
            Algorithm::Ring,
            FaultScript::normal_steady(),
            params.clone(),
            43,
        ),
        SweepPoint::new(Algorithm::Fd, FaultScript::normal_steady(), params, 44),
    ];
    let serial = run_sweep_with_workers(&points, 1);
    let two = run_sweep_with_workers(&points, 2);
    let eight = run_sweep_with_workers(&points, 8);
    assert_eq!(fingerprint(&serial), fingerprint(&two));
    assert_eq!(fingerprint(&serial), fingerprint(&eight));
}

#[test]
fn explorer_verdicts_are_reproducible_from_the_tuple_alone() {
    // A verdict must be a pure function of the regenerated tuple — no
    // hidden state from the exploration that produced it.
    let e = quick_explorer(0xE0);
    for alg in Algorithm::STUDY {
        for index in [0, 1, 7] {
            let t = e.tuple(alg, index);
            assert_eq!(
                run_tuple(&t),
                run_tuple(&t),
                "{alg:?}/{index} must judge identically on every replay"
            );
        }
    }
}

/// Run-context recycling (`study::set_run_scratch`) must be invisible
/// in results: every verdict and every sweep statistic is a pure
/// function of the tuple/point, whether the kernel was built fresh or
/// recycled a previous run's allocations — at any worker count, where
/// pool threads chain many runs through the same thread-local scratch.
///
/// One test owns the global toggle (concurrently toggling from
/// several tests could interleave; harmless if the claim holds, but a
/// violation should fail *here*, not flake elsewhere).
#[test]
fn run_context_recycling_is_invisible_in_results() {
    let e = quick_explorer(0x5C);
    // Tuple verdicts, serial: small corpus plus the n = 64 class.
    for alg in Algorithm::STUDY {
        for index in [0, 3, 11] {
            let t = e.tuple(alg, index);
            study::set_run_scratch(false);
            let cold = run_tuple(&t);
            study::set_run_scratch(true);
            let warm = run_tuple(&t);
            assert_eq!(cold, warm, "{alg:?}/{index} verdict changed under reuse");
        }
    }
    // Whole explorations across worker counts.
    for workers in [1usize, 2, 8] {
        let e = e.clone().with_workers(workers);
        study::set_run_scratch(false);
        let cold = e.explore();
        study::set_run_scratch(true);
        let warm = e.explore();
        assert_eq!(
            (cold.examined, format!("{:?}", cold.repro)),
            (warm.examined, format!("{:?}", warm.repro)),
            "exploration outcome changed under reuse at {workers} workers"
        );
    }
    // Sweep statistics, bit for bit (latency floats included).
    let params = RunParams::new(3, 90.0)
        .with_warmup(Dur::from_millis(200))
        .with_measure(Dur::from_secs(1))
        .with_drain(Dur::from_millis(800))
        .with_replications(2);
    let points = vec![
        SweepPoint::new(
            Algorithm::Fd,
            FaultScript::normal_steady(),
            params.clone(),
            17,
        ),
        SweepPoint::new(
            Algorithm::Gm,
            FaultScript::normal_steady(),
            params.clone(),
            18,
        ),
        SweepPoint::new(Algorithm::Ring, FaultScript::normal_steady(), params, 19),
    ];
    for workers in [1usize, 2, 8] {
        study::set_run_scratch(false);
        let cold = run_sweep_with_workers(&points, workers);
        study::set_run_scratch(true);
        let warm = run_sweep_with_workers(&points, workers);
        assert_eq!(
            fingerprint(&cold),
            fingerprint(&warm),
            "sweep stats changed under reuse at {workers} workers"
        );
    }
    study::set_run_scratch(true);
}

#[cfg(not(feature = "mutation-skip-tiebreak"))]
#[test]
fn small_clean_budget_passes_all_algorithms() {
    // The CI-scale budget (1000 tuples per algorithm) runs as the
    // `explore` example; this is the fast smoke of the same pipeline,
    // covering the paper's two algorithms plus the ring contender.
    let outcome = quick_explorer(0xC1EA).explore();
    assert_eq!(outcome.examined, 75, "25 tuples × 3 algorithms");
    assert!(
        outcome.repro.is_none(),
        "violation on a clean build: {}",
        outcome.repro.unwrap()
    );
}

#[cfg(feature = "mutation-skip-tiebreak")]
#[test]
fn explorer_catches_and_shrinks_the_seeded_mutation() {
    // The mutation delivers decided FD batches in local arrival order
    // instead of id order — divergent exactly when broadcasts race.
    // The explorer must find it quickly and shrink it to a repro that
    // replays the violation deterministically.
    let outcome = Explorer::new(0x7EE7)
        .with_budget(300)
        .with_algorithms(&[Algorithm::Fd])
        .with_group_sizes(3, 4)
        .explore();
    let repro = outcome
        .repro
        .expect("the seeded tie-break mutation must be caught");
    assert!(
        outcome.examined < 300,
        "must stop at the first failing tuple, not run the budget out: {}",
        outcome.examined
    );
    // Shrinking never grows the script …
    assert!(repro.tuple.script.events().len() <= repro.found.script.events().len());
    // … and the minimized tuple replays the recorded violation, twice.
    let first = repro.replay();
    assert_eq!(
        first.violation(),
        Some(&repro.violation),
        "replay must reproduce the recorded violation"
    );
    assert_eq!(first, repro.replay(), "replays are deterministic");
}
