//! Property-based end-to-end tests: random group sizes, loads, crash
//! schedules and failure-detector QoS — uniform total order must hold
//! for every algorithm, always.

use abcast::{AbcastEvent, FdNode, GmNode, MsgId};
use fdet::{QosParams, SuspectSet};
use neko::{Dur, Pid, Process, Sim, SimBuilder, Time};
use proptest::prelude::*;
use study::poisson_arrivals;

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    throughput: f64,
    tmr_ms: u64,
    tm_ms: u64,
    crashes: usize,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..=7,
        10f64..200.0,
        50u64..5_000,
        0u64..50,
        0usize..=2,
        any::<u64>(),
    )
        .prop_map(|(n, throughput, tmr_ms, tm_ms, crashes, seed)| Scenario {
            n,
            throughput,
            tmr_ms,
            tm_ms,
            crashes: crashes.min((n - 1) / 2),
            seed,
        })
}

fn check<P>(mut sim: Sim<P>, sc: &Scenario, label: &str)
where
    P: Process<Cmd = u64, Out = AbcastEvent<u64>>,
{
    let horizon = Time::from_millis(1_500);
    let qos = QosParams::new()
        .with_mistake_recurrence(Dur::from_millis(sc.tmr_ms))
        .with_mistake_duration(Dur::from_millis(sc.tm_ms));
    sim.schedule_fd_plan(fdet::suspicion_steady_plan(sc.n, horizon, qos, sc.seed));
    // Real crashes partway through, detected a constant T_D later.
    let mut crashed = Vec::new();
    for i in 0..sc.crashes {
        let victim = Pid::new(sc.n - 1 - i);
        let at = Time::from_millis(400 + 100 * i as u64);
        sim.schedule_crash(at, victim);
        sim.schedule_fd_plan(fdet::crash_transient_plan(
            sc.n,
            victim,
            at,
            Dur::from_millis(30),
        ));
        crashed.push(victim);
    }
    let senders: Vec<Pid> = Pid::all(sc.n).collect();
    for (t, p, v) in poisson_arrivals(sc.n, sc.throughput, horizon, &senders, sc.seed) {
        sim.schedule_command(t, p, v);
    }
    sim.run_until(horizon + Dur::from_secs(4));

    let mut logs: Vec<Vec<(MsgId, u64)>> = vec![Vec::new(); sc.n];
    for (_, p, ev) in sim.take_outputs() {
        let AbcastEvent::Delivered { id, payload } = ev;
        logs[p.index()].push((id, payload));
    }
    // Uniform total order: every log is a prefix of the longest one.
    let longest = logs
        .iter()
        .max_by_key(|l| l.len())
        .expect("nonempty")
        .clone();
    for (i, log) in logs.iter().enumerate() {
        assert!(
            longest.starts_with(log),
            "{label} {sc:?}: p{}'s log is not a prefix",
            i + 1
        );
    }
    // Liveness: the correct processes delivered something.
    for (i, log) in logs.iter().enumerate() {
        if !crashed.contains(&Pid::new(i)) {
            assert!(
                !log.is_empty(),
                "{label} {sc:?}: correct p{} delivered nothing",
                i + 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fd_algorithm_is_uniform_under_random_chaos(sc in scenario()) {
        let s = SuspectSet::new();
        let n = sc.n;
        let sim = SimBuilder::new(n).seed(sc.seed).build_with(|p| FdNode::<u64>::new(p, n, &s));
        check(sim, &sc, "FD");
    }

    #[test]
    fn gm_algorithm_is_uniform_under_random_chaos(sc in scenario()) {
        let s = SuspectSet::new();
        let n = sc.n;
        let sim = SimBuilder::new(n).seed(sc.seed).build_with(|p| GmNode::<u64>::new(p, n, &s));
        check(sim, &sc, "GM");
    }
}
