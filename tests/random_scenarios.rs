//! Property-based end-to-end tests: random group sizes, loads, fault
//! scripts (crash schedules, crash-recovery churn, healing
//! partitions) and failure-detector QoS — uniform total order must
//! hold for every algorithm, always.
//!
//! Scenarios are expressed as [`FaultScript`]s and compiled straight
//! onto the simulator, exercising the same injection layer the
//! experiment runner uses.

use abcast::{AbcastEvent, FdNode, GmNode, MsgId};
use fdet::{QosParams, SuspectSet};
use neko::{Dur, Pid, Process, Sim, SimBuilder, Time};
use proptest::prelude::*;
use ringpaxos::RingNode;
use study::{poisson_arrivals, FaultScript, ScriptAction, ScriptTime};

#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    throughput: f64,
    tmr_ms: u64,
    tm_ms: u64,
    crashes: usize,
    /// Crashed processes come back 400 ms later (crash-recovery).
    recover: bool,
    seed: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..=7,
        10f64..200.0,
        50u64..5_000,
        0u64..50,
        0usize..=2,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(n, throughput, tmr_ms, tm_ms, crashes, recover, seed)| Scenario {
                n,
                throughput,
                tmr_ms,
                tm_ms,
                crashes: crashes.min((n - 1) / 2),
                recover,
                seed,
            },
        )
}

const HORIZON: Time = Time::from_millis(1_500);

/// The random chaos as one composable script: a run-long suspicion
/// burst plus real crashes partway through — which either stick (the
/// paper's model) or heal into crash-recovery churn (beyond it).
fn chaos_script(sc: &Scenario) -> (FaultScript, Vec<Pid>) {
    let qos = QosParams::new()
        .with_mistake_recurrence(Dur::from_millis(sc.tmr_ms))
        .with_mistake_duration(Dur::from_millis(sc.tm_ms));
    let mut script = FaultScript::default().suspicion_burst(
        ScriptTime::At(Time::ZERO),
        ScriptTime::At(HORIZON),
        qos,
        None,
    );
    let mut crashed = Vec::new();
    for i in 0..sc.crashes {
        let victim = Pid::new(sc.n - 1 - i);
        let at = ScriptTime::At(Time::from_millis(400 + 100 * i as u64));
        let td = Dur::from_millis(30);
        script = if sc.recover {
            script.churn(at, victim, Dur::from_millis(400), td)
        } else {
            script.crash(at, victim, td)
        };
        crashed.push(victim);
    }
    (script, crashed)
}

/// Compiles and schedules `script`, runs the workload, and checks
/// uniform total order (+ liveness of the never-crashed).
fn check<P>(mut sim: Sim<P>, sc: &Scenario, script: &FaultScript, crashed: &[Pid], label: &str)
where
    P: Process<Cmd = u64, Out = AbcastEvent<u64>>,
{
    let end = HORIZON + Dur::from_secs(4);
    let compiled = script.compile(sc.n, Dur::ZERO, end, sc.seed);
    for (t, act) in compiled.entries() {
        match act {
            ScriptAction::Inject(inj) => sim.schedule_injection(*t, inj.clone()),
            ScriptAction::Probe(_) => unreachable!("chaos scripts carry no probe"),
        }
    }
    let senders: Vec<Pid> = Pid::all(sc.n).collect();
    for (t, p, v) in poisson_arrivals(sc.n, sc.throughput, HORIZON, &senders, sc.seed) {
        sim.schedule_command(t, p, v);
    }
    sim.run_until(end);

    let mut logs: Vec<Vec<(MsgId, u64)>> = vec![Vec::new(); sc.n];
    for (_, p, ev) in sim.take_outputs() {
        let AbcastEvent::Delivered { id, payload } = ev;
        logs[p.index()].push((id, payload));
    }
    // Uniform total order: every log is a prefix of the longest one.
    let longest = logs
        .iter()
        .max_by_key(|l| l.len())
        .expect("nonempty")
        .clone();
    for (i, log) in logs.iter().enumerate() {
        assert!(
            longest.starts_with(log),
            "{label} {sc:?}: p{}'s log is not a prefix",
            i + 1
        );
    }
    // Liveness: processes that never crashed delivered something.
    for (i, log) in logs.iter().enumerate() {
        if !crashed.contains(&Pid::new(i)) {
            assert!(
                !log.is_empty(),
                "{label} {sc:?}: correct p{} delivered nothing",
                i + 1
            );
        }
    }
}

fn fd_sim(n: usize, seed: u64) -> Sim<FdNode<u64>> {
    let s = SuspectSet::new();
    SimBuilder::new(n)
        .seed(seed)
        .build_with(|p| FdNode::<u64>::new(p, n, &s))
}

fn gm_sim(n: usize, seed: u64) -> Sim<GmNode<u64>> {
    let s = SuspectSet::new();
    SimBuilder::new(n)
        .seed(seed)
        .build_with(|p| GmNode::<u64>::new(p, n, &s))
}

fn ring_sim(n: usize, seed: u64) -> Sim<RingNode<u64>> {
    let s = SuspectSet::new();
    SimBuilder::new(n)
        .seed(seed)
        .build_with(|p| RingNode::<u64>::new(p, n, &s))
}

/// A two-group partition that heals mid-run; the majority keeps p1.
fn partition_script(n: usize) -> FaultScript {
    let cut = n / 2; // minority size ≤ majority size
    let minority: Vec<Pid> = (0..cut).map(|i| Pid::new(n - 1 - i)).collect();
    let majority: Vec<Pid> = Pid::all(n).filter(|p| !minority.contains(p)).collect();
    FaultScript::default().partition(
        ScriptTime::At(Time::from_millis(400)),
        vec![majority, minority],
        Some(ScriptTime::At(Time::from_millis(900))),
        Dur::from_millis(30),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fd_algorithm_is_uniform_under_random_chaos(sc in scenario()) {
        let (script, crashed) = chaos_script(&sc);
        let crashed_for_liveness: Vec<Pid> =
            if sc.recover { Vec::new() } else { crashed.clone() };
        // Recovered processes count as correct for liveness: by the
        // end of the drain they must have caught up and delivered.
        check(fd_sim(sc.n, sc.seed), &sc, &script, &crashed_for_liveness, "FD");
    }

    #[test]
    fn gm_algorithm_is_uniform_under_random_chaos(sc in scenario()) {
        let (script, crashed) = chaos_script(&sc);
        // A recovered process rejoins the group but may finish the
        // run still catching up, so only never-crashed processes are
        // held to the liveness bar.
        check(gm_sim(sc.n, sc.seed), &sc, &script, &crashed, "GM");
    }

    #[test]
    fn ring_algorithm_is_uniform_under_random_chaos(sc in scenario()) {
        let (script, crashed) = chaos_script(&sc);
        let crashed_for_liveness: Vec<Pid> =
            if sc.recover { Vec::new() } else { crashed.clone() };
        // Same liveness bar as FD: the ring stack shares its
        // recovery profile (no view machinery, renumbering on).
        check(ring_sim(sc.n, sc.seed), &sc, &script, &crashed_for_liveness, "Ring");
    }

    #[test]
    fn fd_algorithm_is_uniform_across_healing_partition(sc in scenario()) {
        let script = partition_script(sc.n);
        let minority: Vec<Pid> = (0..sc.n / 2).map(|i| Pid::new(sc.n - 1 - i)).collect();
        check(fd_sim(sc.n, sc.seed), &sc, &script, &minority, "FD/partition");
    }

    #[test]
    fn gm_algorithm_is_uniform_across_healing_partition(sc in scenario()) {
        let script = partition_script(sc.n);
        let minority: Vec<Pid> = (0..sc.n / 2).map(|i| Pid::new(sc.n - 1 - i)).collect();
        check(gm_sim(sc.n, sc.seed), &sc, &script, &minority, "GM/partition");
    }

    #[test]
    fn ring_algorithm_is_uniform_across_healing_partition(sc in scenario()) {
        // Partitions starve the repair ring of its unsuspected
        // successors mid-cut — the fetch path must rotate through the
        // healed membership without double-delivering a payload.
        let script = partition_script(sc.n);
        let minority: Vec<Pid> = (0..sc.n / 2).map(|i| Pid::new(sc.n - 1 - i)).collect();
        check(ring_sim(sc.n, sc.seed), &sc, &script, &minority, "Ring/partition");
    }
}
