//! Workspace-level invariant tests: the atomic broadcast guarantees
//! must hold for every study algorithm (the paper's two plus the ring
//! contender) under every benchmark scenario, and runs must be
//! exactly reproducible.

use abcast::{AbcastEvent, FdNode, GmNode, Uniformity};
use fdet::{QosParams, SuspectSet};
use neko::{Dur, Pid, Process, Sim, SimBuilder, Time};
use ringpaxos::RingNode;
use study::oracle::{self, DeliveryLog};
use study::poisson_arrivals;

/// All deliveries of one run, per process, in delivery order.
fn deliveries<P>(sim: &mut Sim<P>) -> Vec<DeliveryLog>
where
    P: Process<Out = AbcastEvent<u64>>,
{
    oracle::delivery_logs(sim.n(), sim.take_outputs())
}

/// Uniform total order: all logs are prefix-compatible (agreement on
/// both content and order, no duplicates) — the shared
/// [`study::oracle`] checker, the same one the schedule explorer
/// judges fuzzed runs with.
fn assert_uniform_total_order(logs: &[DeliveryLog], label: &str) {
    oracle::check_uniform_total_order(logs).unwrap_or_else(|v| panic!("{label}: {v}"));
}

fn run_scenario<P>(
    mut sim: Sim<P>,
    n: usize,
    throughput: f64,
    horizon: Time,
    seed: u64,
) -> Vec<DeliveryLog>
where
    P: Process<Cmd = u64, Out = AbcastEvent<u64>>,
{
    let senders: Vec<Pid> = Pid::all(n).collect();
    for (t, p, v) in poisson_arrivals(n, throughput, horizon, &senders, seed) {
        sim.schedule_command(t, p, v);
    }
    sim.run_until(horizon + Dur::from_secs(3));
    deliveries(&mut sim)
}

#[test]
fn total_order_under_wrong_suspicions_fd() {
    for seed in [1u64, 2, 3] {
        let n = 3;
        let s = SuspectSet::new();
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .build_with(|p| FdNode::<u64>::new(p, n, &s));
        let horizon = Time::from_secs(3);
        let qos = QosParams::new()
            .with_mistake_recurrence(Dur::from_millis(100))
            .with_mistake_duration(Dur::from_millis(10));
        sim.schedule_plan(fdet::suspicion_steady_plan(n, horizon, qos, seed));
        let logs = run_scenario(sim, n, 50.0, horizon, seed);
        assert_uniform_total_order(&logs, "FD under suspicions");
        assert!(!logs[0].is_empty(), "seed {seed}: something was delivered");
    }
}

#[test]
fn total_order_under_wrong_suspicions_gm() {
    for seed in [1u64, 2, 3] {
        let n = 3;
        let s = SuspectSet::new();
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .build_with(|p| GmNode::<u64>::new(p, n, &s));
        let horizon = Time::from_secs(3);
        // Mistakes rare enough for the group to keep working, frequent
        // enough to force several exclusion/rejoin cycles.
        let qos = QosParams::new()
            .with_mistake_recurrence(Dur::from_millis(700))
            .with_mistake_duration(Dur::ZERO);
        sim.schedule_plan(fdet::suspicion_steady_plan(n, horizon, qos, seed));
        let logs = run_scenario(sim, n, 50.0, horizon, seed);
        assert_uniform_total_order(&logs, "GM under suspicions");
        assert!(!logs[0].is_empty(), "seed {seed}: something was delivered");
    }
}

#[test]
fn total_order_under_wrong_suspicions_ring() {
    // Wrong suspicions are what exercise the ring's repair machinery:
    // every Suspect edge re-targets in-flight fetches and rotates the
    // acceptor ring, so this is the scenario where ring-specific state
    // could first diverge from the contract.
    for seed in [1u64, 2, 3] {
        let n = 3;
        let s = SuspectSet::new();
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .build_with(|p| RingNode::<u64>::new(p, n, &s));
        let horizon = Time::from_secs(3);
        let qos = QosParams::new()
            .with_mistake_recurrence(Dur::from_millis(100))
            .with_mistake_duration(Dur::from_millis(10));
        sim.schedule_plan(fdet::suspicion_steady_plan(n, horizon, qos, seed));
        let logs = run_scenario(sim, n, 50.0, horizon, seed);
        assert_uniform_total_order(&logs, "Ring under suspicions");
        assert!(!logs[0].is_empty(), "seed {seed}: something was delivered");
    }
}

#[test]
fn total_order_across_a_crash_all_algorithms() {
    let n = 5;
    let crash_at = Time::from_millis(700);
    let td = Dur::from_millis(40);
    let horizon = Time::from_secs(2);

    let s = SuspectSet::new();
    let mut fd = SimBuilder::new(n)
        .seed(11)
        .build_with(|p| FdNode::<u64>::new(p, n, &s));
    let mut gm = SimBuilder::new(n)
        .seed(11)
        .build_with(|p| GmNode::<u64>::new(p, n, &s));
    let mut ring = SimBuilder::new(n)
        .seed(11)
        .build_with(|p| RingNode::<u64>::new(p, n, &s));
    for sim_logs in [
        {
            fd.schedule_crash(crash_at, Pid::new(0));
            fd.schedule_plan(fdet::crash_transient_plan(n, Pid::new(0), crash_at, td));
            run_scenario(fd, n, 100.0, horizon, 11)
        },
        {
            gm.schedule_crash(crash_at, Pid::new(0));
            gm.schedule_plan(fdet::crash_transient_plan(n, Pid::new(0), crash_at, td));
            run_scenario(gm, n, 100.0, horizon, 11)
        },
        {
            ring.schedule_crash(crash_at, Pid::new(0));
            ring.schedule_plan(fdet::crash_transient_plan(n, Pid::new(0), crash_at, td));
            run_scenario(ring, n, 100.0, horizon, 11)
        },
    ] {
        assert_uniform_total_order(&sim_logs, "crash of the coordinator/sequencer");
        // The survivors keep delivering after the crash.
        let survivor = &sim_logs[1];
        assert!(
            survivor.len() > sim_logs[0].len(),
            "survivors outlive the crashed process"
        );
    }
}

#[test]
fn non_uniform_gm_preserves_total_order_among_survivors() {
    let n = 3;
    let s = SuspectSet::new();
    let mut sim = SimBuilder::new(n)
        .seed(4)
        .build_with(|p| GmNode::<u64>::with_uniformity(p, n, &s, Uniformity::NonUniform));
    let horizon = Time::from_secs(2);
    let qos = QosParams::new()
        .with_mistake_recurrence(Dur::from_secs(1))
        .with_mistake_duration(Dur::ZERO);
    sim.schedule_plan(fdet::suspicion_steady_plan(n, horizon, qos, 4));
    let logs = run_scenario(sim, n, 50.0, horizon, 4);
    assert_uniform_total_order(&logs, "non-uniform GM");
}

#[test]
fn same_seed_reproduces_the_exact_run() {
    let run = |seed: u64| {
        let n = 3;
        let s = SuspectSet::new();
        let mut sim = SimBuilder::new(n)
            .seed(seed)
            .build_with(|p| FdNode::<u64>::new(p, n, &s));
        let horizon = Time::from_secs(1);
        let qos = QosParams::new()
            .with_mistake_recurrence(Dur::from_millis(200))
            .with_mistake_duration(Dur::from_millis(5));
        sim.schedule_plan(fdet::suspicion_steady_plan(n, horizon, qos, seed));
        let senders: Vec<Pid> = Pid::all(n).collect();
        for (t, p, v) in poisson_arrivals(n, 200.0, horizon, &senders, seed) {
            sim.schedule_command(t, p, v);
        }
        sim.run_until(horizon + Dur::from_secs(1));
        sim.take_outputs()
    };
    assert_eq!(run(42), run(42), "same seed, same run");
    assert_ne!(run(42), run(43), "different seed, different run");
}

#[test]
fn validity_every_broadcast_from_correct_process_is_delivered() {
    // Normal-steady: every single broadcast must be delivered by every
    // process (no crashes, no suspicions, load below saturation).
    let n = 3;
    let s = SuspectSet::new();
    let mut sim = SimBuilder::new(n)
        .seed(9)
        .build_with(|p| GmNode::<u64>::new(p, n, &s));
    let horizon = Time::from_secs(2);
    let senders: Vec<Pid> = Pid::all(n).collect();
    let arrivals = poisson_arrivals(n, 200.0, horizon, &senders, 9);
    let total = arrivals.len();
    for (t, p, v) in arrivals {
        sim.schedule_command(t, p, v);
    }
    sim.run_until(horizon + Dur::from_secs(3));
    let logs = deliveries(&mut sim);
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log.len(), total, "p{} missed messages", i + 1);
    }
}

#[test]
fn gm_view_shrinks_and_recovers_through_real_membership_changes() {
    let n = 3;
    let s = SuspectSet::new();
    let mut sim = SimBuilder::new(n)
        .seed(2)
        .build_with(|p| GmNode::<u64>::new(p, n, &s));
    // One wrong suspicion: p1 suspects p3 at 100 ms, corrected at 200 ms.
    sim.schedule_fd_event(
        Time::from_millis(100),
        Pid::new(0),
        neko::FdEvent::Suspect(Pid::new(2)),
    );
    sim.schedule_fd_event(
        Time::from_millis(200),
        Pid::new(0),
        neko::FdEvent::Trust(Pid::new(2)),
    );
    for i in 0..40u64 {
        sim.schedule_command(Time::from_millis(5 + i * 20), Pid::new((i % 3) as usize), i);
    }
    sim.run_until(Time::from_secs(3));
    let logs = deliveries(&mut sim);
    assert_uniform_total_order(&logs, "exclusion + rejoin");
    // p3 was wrongly excluded but caught up via state transfer: in the
    // end it delivered everything.
    assert_eq!(logs[2].len(), logs[0].len(), "rejoined process caught up");
    let node = sim.process(Pid::new(2));
    assert!(!node.algorithm().is_excluded());
    assert!(!node.algorithm().is_catching_up());
    assert!(
        node.algorithm().view().id() > membership::ViewId(0),
        "views really changed"
    );
}
